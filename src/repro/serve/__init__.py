"""``repro.serve`` — sharded resilient KV service with open-loop traffic SLOs.

The chaos engine (:mod:`repro.chaos`) prices failures in *infrastructure*
units — MTTR and availability.  This package prices them the way a service
owner does: **request latency against an SLO**.  It promotes the GUPS-style
``kv`` workload into a sharded key-value *service* under seeded open-loop
traffic and asks what each recovery protocol does to the tail.  The layers:

* :mod:`repro.serve.shard` — :class:`ShardMap`, multiplicative hashing of
  client keys over rank-owned regions of the shared ``"kv"`` window (hot
  Zipf keys scatter across all shards instead of melting one rank);
* :mod:`repro.serve.traffic` — :class:`RequestGenerator`, the seeded
  open-loop source: Poisson-many arrivals as sorted uniforms, Zipf key skew,
  a Bernoulli read/write mix, every request pre-assigned to the
  ``(frontend rank, step)`` that admits it so the serving kernel stays a
  pure function of ``(step, rank)`` — the localized-replay purity contract;
* :mod:`repro.serve.service` — :class:`KvService`, the ``"kv_service"``
  study workload: lock-protected atomic writes, one-sided reads, and
  per-request completion/status records that stay truthful under rollback
  re-execution, replay suppression and degraded excision;
* :mod:`repro.serve.slo` — :class:`WindowTracker` (checkpoint/recovery
  window observer) and the segmented SLO reducer: p50/p95/p99, throughput
  and error rate for steady-state vs during-checkpoint vs during-recovery;
* :mod:`repro.serve.engine` — :class:`ServeSpec` and the drivers: the
  failure-free probe that anchors the arrival clock, the seeded kill plan
  shared by every cell, :func:`run_service` and :func:`run_slo_comparison`;
* :mod:`repro.serve.report` — JSON/markdown reports, the canonical JSONL
  request log, the comparison invariants (localized recovery-window p99
  strictly below global's; degraded errs but stays flat) and the baseline
  regression gate behind ``python -m repro.serve``.

Everything is virtual-time deterministic: a seeded comparison produces
byte-identical request logs and SLO reports across re-runs, executors and
the ``sim``/``proc`` backends.
"""

from repro.serve.engine import (
    ServeResult,
    ServeSpec,
    calibrate_service,
    run_service,
    run_slo_comparison,
)
from repro.serve.report import (
    check_against_baseline,
    check_serve_invariants,
    load_requests,
    render_markdown,
    report_json,
    write_requests,
)
from repro.serve.service import (
    STATUS_DROPPED_WRITE,
    STATUS_OK,
    STATUS_STALE_READ,
    STATUS_UNSERVED,
    STATUSES,
    KvService,
)
from repro.serve.shard import ShardMap
from repro.serve.slo import SEGMENTS, WindowTracker, build_slo_report
from repro.serve.traffic import Request, RequestGenerator, trace_lines

__all__ = [
    "KvService",
    "Request",
    "RequestGenerator",
    "SEGMENTS",
    "STATUSES",
    "STATUS_DROPPED_WRITE",
    "STATUS_OK",
    "STATUS_STALE_READ",
    "STATUS_UNSERVED",
    "ServeResult",
    "ServeSpec",
    "ShardMap",
    "WindowTracker",
    "build_slo_report",
    "calibrate_service",
    "check_against_baseline",
    "check_serve_invariants",
    "load_requests",
    "render_markdown",
    "report_json",
    "run_service",
    "run_slo_comparison",
    "trace_lines",
    "write_requests",
]
