"""The sharded KV service as a study workload: ``"kv_service"``.

:class:`KvService` promotes the GUPS-style :class:`~repro.study.workloads.KvUpdate`
kernel into a *service*: every rank is simultaneously a *frontend* (it admits
the open-loop requests pre-assigned to it by the
:class:`~repro.serve.traffic.RequestGenerator`) and a *shard owner* (it holds
one :class:`~repro.serve.shard.ShardMap` region of the ``"kv"`` window).
Writes are lock-protected atomic ``fetch_and_op(SUM)`` on the owner; reads
are blocking one-sided gets.  On top of the kernel the service records the
**completion instant and status of every request** on the admitting rank's
virtual clock — the raw material of the SLO report.

Recording has to survive the recovery protocols without lying:

* a **global rollback** re-executes every step since the checkpoint, so a
  re-served request simply *overwrites* its record with the later completion
  — which is the truth: the client's response was lost with the rollback and
  only the re-execution's answer counts (this is exactly how rollback spikes
  tail latency for every key);
* a **localized replay** re-enters the kernel on every rank, but survivors'
  operations are suppressed against the action log — their original
  responses were already delivered, so survivors skip recording during
  replay (gated on :attr:`~repro.rma.runtime.RmaRuntime.replay_restoring`)
  and only the restored ranks re-measure, at post-recovery clocks: the
  failed shard's requests stall, everyone else's latency is untouched;
* a **degraded continuation** excises the victims: operations towards an
  excised owner are dropped by the runtime (reads observe zeros), so the
  service marks them ``stale_read``/``dropped_write`` — served on time, but
  wrong — and requests fronted by an excised rank are never re-admitted at
  all (the engine reports them ``unserved``).

The kernel stays a pure function of ``(step, rank)`` — the admission table
is precomputed, never derived from the clock — which is the contract that
keeps a localized replay from diverging from its log.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, ClassVar

import numpy as np

from repro.errors import ServeError
from repro.serve.shard import ShardMap
from repro.serve.traffic import WRITE, RequestGenerator
from repro.study.workloads import WORKLOADS, Workload

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.api.scheduler import Kernel
    from repro.api.session import Job

__all__ = [
    "KvService",
    "STATUS_OK",
    "STATUS_STALE_READ",
    "STATUS_DROPPED_WRITE",
    "STATUS_UNSERVED",
    "STATUSES",
]

#: Request outcome taxonomy (the JSONL request log's ``status`` enumeration).
STATUS_OK = "ok"
#: A read answered from an excised owner's zeroed buffer (best-effort mode).
STATUS_STALE_READ = "stale_read"
#: A write towards an excised owner, silently dropped by the runtime.
STATUS_DROPPED_WRITE = "dropped_write"
#: A request whose frontend rank was excised before admitting it.
STATUS_UNSERVED = "unserved"

STATUSES = frozenset(
    {STATUS_OK, STATUS_STALE_READ, STATUS_DROPPED_WRITE, STATUS_UNSERVED}
)


class KvService(Workload):
    """Sharded resilient KV service under seeded open-loop traffic."""

    name: ClassVar[str] = "kv_service"

    def __init__(
        self,
        *,
        nprocs: int = 8,
        slots: int = 64,
        key_space: int = 512,
        steps: int = 40,
        rate_per_step: float = 6.0,
        zipf_s: float = 1.1,
        read_fraction: float = 0.5,
        seed: int = 2026,
        flops_per_request: float = 50.0,
    ) -> None:
        super().__init__(nprocs=nprocs)
        if slots < 1 or steps < 1:
            raise ServeError("kv_service needs slots >= 1 and steps >= 1")
        if flops_per_request < 0:
            raise ServeError("flops_per_request must be non-negative")
        self.slots = slots
        self.nsteps = steps
        self.flops_per_request = flops_per_request
        self.shards = ShardMap(nshards=nprocs, slots=slots)
        self.generator = RequestGenerator(
            seed=seed,
            steps=steps,
            nprocs=nprocs,
            key_space=key_space,
            rate_per_step=rate_per_step,
            zipf_s=zipf_s,
            read_fraction=read_fraction,
        )
        #: The full trace, in arrival order (pure function of the parameters).
        self.requests = self.generator.generate()
        self._admission = self.generator.by_step_frontend(self.requests)
        #: rid -> (completion virtual time on the frontend's clock, status).
        #: Overwrite semantics: a re-executed request's latest committed
        #: serving wins (see the module docstring for why that is correct
        #: under each recovery protocol).
        self.records: dict[int, tuple[float, str]] = {}
        self._job: Job | None = None

    # ------------------------------------------------------------------
    @property
    def steps(self) -> int:
        return self.nsteps

    def setup(self, job: "Job") -> None:
        job.allocate("kv", self.slots)
        self._job = job
        self.records = {}

    def kernel(self) -> "Kernel":
        admission = self._admission
        shards = self.shards
        flops = self.flops_per_request
        records = self.records

        def kernel(ctx, step):
            job = self._job
            assert job is not None, "kv_service kernel run before setup(job)"
            runtime = job.runtime
            # Survivors re-entering the kernel during a localized replay
            # already delivered their pre-crash responses — those records
            # stand; only the restored ranks re-measure (at post-recovery
            # clocks).  A survivor can still hold *undelivered* requests:
            # ranks after the victim in step order never ran the aborted
            # step, so their replay pass is the first (and only) serving —
            # record it.
            overwrite = (
                not runtime.replaying or ctx.rank in runtime.replay_restoring
            )
            excised = runtime.excised
            for request in admission.get((step, ctx.rank), ()):
                owner, offset = shards.locate(request.key)
                if request.op == WRITE:
                    ctx.lock(owner)
                    ctx.fetch_and_op(owner, "kv", offset, request.delta)
                    ctx.unlock(owner)
                else:
                    ctx.get(owner, "kv", offset, 1)
                completed = ctx.compute(flops)
                if overwrite or request.rid not in records:
                    if owner in excised:
                        status = (
                            STATUS_DROPPED_WRITE
                            if request.op == WRITE
                            else STATUS_STALE_READ
                        )
                    else:
                        status = STATUS_OK
                    records[request.rid] = (completed, status)

        return kernel

    def collect(self, job: "Job") -> np.ndarray:
        return job.gather("kv")

    # ------------------------------------------------------------------
    def expected(self) -> np.ndarray:
        """The failure-free table: every write applied to its hashed slot.

        ``fetch_and_op(SUM)`` commutes, so arrival order is irrelevant and a
        local reduction is exact — the digest-equality oracle for rollback
        and replay runs.
        """
        table = np.zeros(self.nprocs * self.slots, dtype=np.float64)
        for request in self.requests:
            if request.op == WRITE:
                owner, offset = self.shards.locate(request.key)
                table[owner * self.slots + offset] += request.delta
        return table


# The service registers into the *study* workload catalog — the dict object
# repro.registry already knows — so campaigns, both CLIs' --list and
# make_workload("kv_service") all resolve it with zero extra wiring.
WORKLOADS[KvService.name] = KvService
