"""The serving engine: spec, calibration probe, driver and comparison grid.

One :class:`ServeSpec` describes one cell: the service's traffic parameters
(shared by every cell of a comparison), the resilience configuration
(``store`` × ``recovery``), the execution ``backend`` and the kill plan
shape.  :func:`run_service` executes a cell:

1. **probe** — a failure-free, FT-free run on the ``sim`` backend measures
   the completion-stream length (kill offsets are stream positions, so one
   probe calibrates every backend alike) and the failure-free makespan that
   anchors the open-loop **arrival clock**: request ``r`` arrives at
   ``r.frac × probe_makespan``, an instant that never reacts to checkpoints
   or outages — that independence is what makes queueing delay visible;
2. **serve** — the real run under the declared
   :class:`~repro.api.policy.FaultTolerancePolicy`, with the
   :class:`~repro.ft.inject.FaultInjector` firing the plan (real SIGKILLs on
   ``proc``) and a :class:`~repro.serve.slo.WindowTracker` observing the
   checkpoint/recovery windows;
3. **reduce** — per-request rows (admission → completion latency in virtual
   time, status, window segment) and the segmented SLO report.

The kill plan is a pure function of ``(seed, traffic shape)`` — deliberately
*not* of backend/store/recovery — so :func:`run_slo_comparison` pits the
recovery protocols against the **identical** failure schedule and client
population, which is what makes "localized stalls one shard, rollback spikes
every key, degraded trades errors for flatness" a like-for-like claim.
"""

from __future__ import annotations

import zlib
from collections.abc import Sequence
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace

import numpy as np

from repro.api.policy import FaultTolerancePolicy, Topology
from repro.api.session import launch
from repro.chaos.soak import scaled_cost_model
from repro.errors import CatastrophicFailure, RecoveryError, ServeError
from repro.ft.inject import FaultInjector, KillEvent, KillKind, KillPlan, install_injector
from repro.registry import available, plural
from repro.serve.service import STATUS_UNSERVED, KvService
from repro.serve.slo import WindowTracker, build_slo_report
from repro.study.workloads import make_workload
from repro.trace.tracer import Tracer, current_trace_hub, trace_label

__all__ = ["ServeSpec", "ServeResult", "calibrate_service", "run_service", "run_slo_comparison"]


@dataclass(frozen=True)
class ServeSpec:
    """Declarative description of one serving cell.

    Traffic and plan parameters are shared across a comparison; only the
    ``backend`` / ``store`` / ``recovery`` axes vary between its cells.
    """

    backend: str = "sim"
    store: str = "memory"
    #: Recovery-protocol registry name: "global", "localized" or "degraded".
    recovery: str = "global"
    #: Delivery mode under failure (registry kind ``"delivery"``).
    delivery: str = "reliable"
    nprocs: int = 8
    procs_per_node: int = 2
    #: Slots per shard (one shard per rank).
    slots: int = 64
    #: Client key space (hashed over the shards).
    key_space: int = 512
    steps: int = 40
    rate_per_step: float = 6.0
    zipf_s: float = 1.1
    read_fraction: float = 0.5
    #: Coordinated-checkpoint interval in steps (numeric: a service must
    #: keep checkpointing, so ``None``/``"auto"`` are not options here).
    interval: int = 10
    #: Virtual-time compression (same lever as the soak engine) so SLO
    #: latencies come out in operator-meaningful milliseconds.
    compression: float = 1000.0
    seed: int = 2026
    #: Kill offset as a fraction of the probe's completion stream.
    kill_frac: float = 0.45
    kill_kind: str = "node_kill"
    kills: int = 1
    #: Degraded-flatness invariant: recovery-window p99 may exceed the
    #: steady-state p99 by at most this factor for the degraded cell.
    flatness: float = 8.0
    watchdog: float | None = None
    service_params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        for kind, name in (
            ("backend", self.backend),
            ("store", self.store),
            ("recovery", self.recovery),
            ("delivery", self.delivery),
        ):
            known = available(kind)
            if name not in known:
                listing = ", ".join(repr(k) for k in known)
                raise ServeError(
                    f"unknown {kind} {name!r} in serve spec; "
                    f"registered {plural(kind)} are: {listing}"
                )
        if self.kill_kind not in (k.value for k in KillKind):
            choices = ", ".join(repr(k.value) for k in KillKind)
            raise ServeError(
                f"unknown kill kind {self.kill_kind!r}; choose one of: {choices}"
            )
        if not isinstance(self.interval, int) or self.interval < 1:
            raise ServeError("serve checkpoint interval must be a positive step count")
        if self.compression <= 0:
            raise ServeError("time compression must be positive")
        if not 0.0 < self.kill_frac < 1.0:
            raise ServeError("kill_frac must be strictly between 0 and 1")
        if self.kills < 0:
            raise ServeError("kills must be non-negative")
        if self.flatness <= 0:
            raise ServeError("flatness must be positive")
        if self.nprocs < 2 or self.procs_per_node < 1:
            raise ServeError("serving needs nprocs >= 2 and procs_per_node >= 1")
        if self.steps < 1 or self.key_space < 1 or self.slots < 1:
            raise ServeError("serving needs steps, key_space and slots all >= 1")
        if self.rate_per_step <= 0.0:
            raise ServeError("rate_per_step must be positive")
        if self.zipf_s < 0.0:
            raise ServeError("zipf_s must be non-negative")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ServeError("read_fraction must be within [0, 1]")

    @property
    def cell_key(self) -> str:
        return f"{self.backend}/{self.store}/{self.recovery}"

    def service(self) -> KvService:
        """A fresh service instance for this spec (registry-resolved)."""
        service = make_workload(
            KvService.name,
            nprocs=self.nprocs,
            slots=self.slots,
            key_space=self.key_space,
            steps=self.steps,
            rate_per_step=self.rate_per_step,
            zipf_s=self.zipf_s,
            read_fraction=self.read_fraction,
            seed=self.seed,
            **dict(self.service_params),
        )
        assert isinstance(service, KvService)
        return service


@dataclass(frozen=True)
class ServeResult:
    """Everything one serving cell produced, ready for reporting and gating."""

    spec: ServeSpec
    #: Per-request rows (JSONL-serializable dicts; the canonical request log).
    rows: list[dict]
    #: The segmented SLO document (:func:`~repro.serve.slo.build_slo_report`).
    slo: dict
    #: The generated kill plan as ``[after_ops, rank, kind]`` triples.
    plan: list[list]
    #: Injector records, one per planned kill (fired or skipped).
    kills: list[dict]
    #: Window spans the tracker observed.
    checkpoint_windows: list[list]
    recovery_windows: list[list]
    #: Calibration: completion-stream length / makespan of the probe.
    probe_ops: int
    probe_elapsed_s: float
    #: Session counters at the end of the run.
    checkpoints: int
    recoveries: int
    excised_ranks: int
    steps_executed: int
    elapsed_s: float
    #: Bit-exact digest of the final table (None if aborted).
    digest: str | None
    #: Exception class name if the run ended early, else None.
    aborted: str | None

    def as_dict(self) -> dict:
        """JSON-ready form (byte-identical across re-runs: no wall clock)."""
        return {
            "spec": {
                "backend": self.spec.backend,
                "store": self.spec.store,
                "recovery": self.spec.recovery,
                "nprocs": self.spec.nprocs,
                "procs_per_node": self.spec.procs_per_node,
                "slots": self.spec.slots,
                "key_space": self.spec.key_space,
                "steps": self.spec.steps,
                "rate_per_step": self.spec.rate_per_step,
                "zipf_s": self.spec.zipf_s,
                "read_fraction": self.spec.read_fraction,
                "interval": self.spec.interval,
                "compression": self.spec.compression,
                "seed": self.spec.seed,
                "kill_frac": self.spec.kill_frac,
                "kill_kind": self.spec.kill_kind,
                "kills": self.spec.kills,
                "flatness": self.spec.flatness,
            },
            "plan": self.plan,
            "kills": self.kills,
            "checkpoint_windows": self.checkpoint_windows,
            "recovery_windows": self.recovery_windows,
            "probe_ops": self.probe_ops,
            "probe_elapsed_s": self.probe_elapsed_s,
            "slo": self.slo,
            "checkpoints": self.checkpoints,
            "recoveries": self.recoveries,
            "excised_ranks": self.excised_ranks,
            "steps_executed": self.steps_executed,
            "elapsed_s": self.elapsed_s,
            "digest": self.digest,
            "aborted": self.aborted,
            "requests": self.rows,
        }


# ----------------------------------------------------------------------
# Calibration and plan generation
# ----------------------------------------------------------------------
def calibrate_service(service: KvService, spec: ServeSpec) -> tuple[int, float]:
    """Failure-free probe: ``(completion-stream ops, makespan seconds)``.

    Always on the ``sim`` backend and without fault tolerance: the
    completion stream is contractually identical across backends, and the
    probe's makespan is the *client's* failure-free timeline — the arrival
    clock must not include checkpoint overhead, or arrivals would slow down
    with the protocol under test and the comparison would stop being
    open-loop.
    """
    cost = scaled_cost_model(compression=spec.compression)
    with launch(
        service.nprocs,
        topology=Topology(procs_per_node=spec.procs_per_node, cost_model=cost),
        sync_each_step=service.sync_each_step,
        backend="sim",
    ) as job:
        service.setup(job)
        counter = FaultInjector(KillPlan([]))
        job.runtime.add_interceptor(counter)
        report = job.run(service.kernel(), steps=service.steps)
    return counter.ops_seen, report.elapsed


def _plan_seed(spec: ServeSpec) -> np.random.SeedSequence:
    """Plan entropy: seed + a stable domain tag — no comparison axes.

    Backend, store and recovery are deliberately excluded so every cell of a
    comparison faces the identical failure schedule.
    """
    return np.random.SeedSequence((spec.seed, zlib.crc32(b"serve.plan")))


def build_plan(spec: ServeSpec, *, ops_total: int) -> KillPlan:
    """The spec's kill plan (pure function of spec + calibrated stream length)."""
    if spec.kills == 0:
        return KillPlan([])
    rng = np.random.default_rng(_plan_seed(spec))
    if spec.kills == 1:
        fracs = [spec.kill_frac]
    else:
        fracs = sorted(rng.uniform(0.2, 0.8, size=spec.kills).tolist())
    victims = rng.integers(0, spec.nprocs, size=spec.kills)
    kind = KillKind(spec.kill_kind)
    return KillPlan(
        [
            KillEvent(
                after_ops=max(1, int(frac * ops_total)), rank=int(victim), kind=kind
            )
            for frac, victim in zip(fracs, victims)
        ]
    )


# ----------------------------------------------------------------------
# The driver
# ----------------------------------------------------------------------
def run_service(spec: ServeSpec) -> ServeResult:
    """Run one serving cell to completion and reduce it to its SLO report."""
    service = spec.service()
    cost = scaled_cost_model(compression=spec.compression)
    with trace_label(f"{spec.cell_key}/probe"):
        probe_ops, probe_elapsed = calibrate_service(service, spec)
    plan = build_plan(spec, ops_total=probe_ops)

    # The tracker consumes the trace event bus rather than registering its
    # own observer/listener stack (same timestamps, one instrumentation
    # source); a run-wide hub — an engine CLI's ``--trace`` — collects the
    # tracer into the merged trace under this cell's label.
    tracker = WindowTracker()
    aborted: str | None = None
    digest: str | None = None
    with trace_label(spec.cell_key):
        hub = current_trace_hub()
        tracer = hub.tracer() if hub is not None else Tracer(detail="lifecycle")
    with launch(
        spec.nprocs,
        topology=Topology(procs_per_node=spec.procs_per_node, cost_model=cost),
        ft=FaultTolerancePolicy(
            interval=spec.interval, store=spec.store, recovery=spec.recovery,
            delivery=spec.delivery,
        ),
        sync_each_step=service.sync_each_step,
        backend=spec.backend,
        watchdog=spec.watchdog,
        trace=tracer,
    ) as job:
        service.setup(job)
        tracker.bind(job)
        tracer.subscribe(tracker.consume)
        injector = install_injector(job, plan)
        try:
            report = job.run(service.kernel(), steps=service.steps)
        except (RecoveryError, CatastrophicFailure) as exc:
            aborted = type(exc).__name__
            report = job.report()
        tracker.finish(job.cluster.elapsed())
        if aborted is None:
            digest = service.digest(service.collect(job))

    rows = _assemble_rows(service, probe_elapsed, tracker)
    # Request lifecycles join the trace once the rows are reduced: arrival
    # and completion are virtual instants, so the events are deterministic.
    for row in rows:
        completion = row["completion_t"]
        tracer.emit(
            "request_completed",
            completion if completion is not None else row["arrival_t"],
            **{key: row[key] for key in (
                "rid", "frontend", "owner", "step", "op", "key",
                "arrival_t", "completion_t", "latency_s", "status", "segment",
            )},
        )
    slo = build_slo_report(rows, tracker, total_s=report.elapsed)
    return ServeResult(
        spec=spec,
        rows=rows,
        slo=slo,
        plan=[[e.after_ops, e.rank, e.kind.value] for e in plan],
        kills=tracker.kills,
        checkpoint_windows=[list(w) for w in tracker.checkpoint_windows],
        recovery_windows=[list(w) for w in tracker.recovery_windows],
        probe_ops=probe_ops,
        probe_elapsed_s=probe_elapsed,
        checkpoints=int(report.checkpoints),
        recoveries=int(report.recoveries),
        excised_ranks=int(report.excised_ranks),
        steps_executed=int(report.steps_executed),
        elapsed_s=report.elapsed,
        digest=digest,
        aborted=aborted,
    )


def _assemble_rows(
    service: KvService, probe_elapsed: float, tracker: WindowTracker
) -> list[dict]:
    """Join the trace with the service's completion records, in rid order.

    The arrival clock is the probe's failure-free timeline; latency is
    clamped at zero because a request *admitted* early in a step can
    complete before its nominal within-step arrival instant — the client
    cannot experience negative waiting.  A request with no record was never
    served (its frontend was excised first): it has no completion or
    latency, is an error, and is segmented by its arrival instant.
    """
    rows = []
    for request in service.requests:
        arrival = request.frac * probe_elapsed
        record = service.records.get(request.rid)
        if record is None:
            completion, latency, status = None, None, STATUS_UNSERVED
            segment = tracker.segment_of(arrival)
        else:
            completion, status = record
            latency = max(completion - arrival, 0.0)
            segment = tracker.segment_of(completion)
        rows.append(
            {
                "rid": request.rid,
                "frontend": request.frontend,
                "owner": service.shards.owner(request.key),
                "step": request.step,
                "op": request.op,
                "key": request.key,
                "arrival_t": arrival,
                "completion_t": completion,
                "latency_s": latency,
                "status": status,
                "segment": segment,
            }
        )
    return rows


# ----------------------------------------------------------------------
# The comparison grid
# ----------------------------------------------------------------------
def run_slo_comparison(
    base: ServeSpec,
    *,
    recoveries: Sequence[str] = ("global", "localized", "degraded"),
    backends: Sequence[str] | None = None,
    stores: Sequence[str] | None = None,
    executor: str = "serial",
    max_workers: int | None = None,
) -> list[ServeResult]:
    """The resilience grid: identical seed, traffic and kill plan per cell.

    Cells are independent sessions, so ``executor="thread"`` parallelizes
    them while the assembled result list (and hence the report) stays
    byte-identical to a serial run.
    """
    backends = tuple(backends) if backends is not None else (base.backend,)
    stores = tuple(stores) if stores is not None else (base.store,)
    recoveries = tuple(recoveries)
    if not recoveries or not backends or not stores:
        raise ServeError("comparison axes must be non-empty")
    specs = [
        replace(base, backend=b, store=s, recovery=r)
        for b in backends
        for s in stores
        for r in recoveries
    ]
    if executor == "serial":
        return [run_service(spec) for spec in specs]
    if executor == "thread":
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            return list(pool.map(run_service, specs))
    raise ServeError(f"unknown executor {executor!r}; choose 'serial' or 'thread'")
