"""Open-loop traffic: seeded Poisson arrivals with Zipf key skew.

The generator produces the *whole* request trace up front, as a pure
function of its parameters — Poisson-many requests, arrival instants as
sorted uniforms over the normalized timeline (the order statistics of a
Poisson process), Zipf-skewed keys, a Bernoulli read/write mix — and then
pre-assigns every request to the ``(frontend rank, job step)`` that will
admit it.  Pre-assignment is the load-bearing design decision: the serving
kernel stays a pure function of ``(step, rank)``, which is exactly the
contract the localized-replay cursor enforces (a kernel that consulted the
clock to decide what to serve would issue different operations during
replay and abort recovery with a divergence error).

*Open-loop* means arrival times never react to service times: a request
admitted at step ``s`` arrived at its own instant of the failure-free
timeline whether or not the service is mid-recovery — so queueing delay
during an outage shows up as latency, the thing a closed-loop (lock-step)
driver structurally cannot measure.

Identical seeds yield byte-identical traces (:func:`trace_lines` is the
canonical serialization CI and the determinism tests compare); disjoint
seeds yield disjoint traces.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass

import numpy as np

from repro.errors import ServeError

__all__ = ["Request", "RequestGenerator", "trace_lines"]

#: Request verbs of the KV service.
READ = "read"
WRITE = "write"


@dataclass(frozen=True)
class Request:
    """One client request, fully determined at generation time."""

    #: Arrival-order id (0-based; arrival fractions are non-decreasing in it).
    rid: int
    #: Arrival instant as a fraction of the failure-free timeline, in [0, 1).
    frac: float
    #: The rank admitting this request (round-robin frontend assignment).
    frontend: int
    #: The job step that serves it: ``floor(frac * steps)``.
    step: int
    #: ``"read"`` or ``"write"``.
    op: str
    #: Client key (hashed onto a shard by the :class:`~repro.serve.shard.ShardMap`).
    key: int
    #: Accumulated value for writes (0.0 for reads).
    delta: float

    def as_dict(self) -> dict:
        return {
            "rid": self.rid,
            "frac": self.frac,
            "frontend": self.frontend,
            "step": self.step,
            "op": self.op,
            "key": self.key,
            "delta": self.delta,
        }


class RequestGenerator:
    """Seeded open-loop request source for one service run.

    Parameters mirror the load knobs of a synthetic benchmark driver:
    ``rate_per_step`` (mean arrivals per job step — the Poisson intensity),
    ``zipf_s`` (key-skew exponent; 0 degenerates to uniform), and
    ``read_fraction``.  ``generate()`` is deterministic and side-effect
    free; two generators with equal parameters produce equal traces.
    """

    def __init__(
        self,
        *,
        seed: int,
        steps: int,
        nprocs: int,
        key_space: int,
        rate_per_step: float = 8.0,
        zipf_s: float = 1.1,
        read_fraction: float = 0.5,
    ) -> None:
        if steps < 1 or nprocs < 1 or key_space < 1:
            raise ServeError("traffic needs steps, nprocs and key_space all >= 1")
        if rate_per_step <= 0:
            raise ServeError("rate_per_step must be positive")
        if zipf_s < 0:
            raise ServeError("zipf_s must be non-negative")
        if not 0.0 <= read_fraction <= 1.0:
            raise ServeError("read_fraction must be within [0, 1]")
        self.seed = seed
        self.steps = steps
        self.nprocs = nprocs
        self.key_space = key_space
        self.rate_per_step = rate_per_step
        self.zipf_s = zipf_s
        self.read_fraction = read_fraction

    # ------------------------------------------------------------------
    def _rng(self) -> np.random.Generator:
        """Entropy: the seed plus a stable domain tag — and nothing else.

        The tag enters as a CRC (not a Python hash), so the stream is
        identical across processes and machines; the comparison axes
        (backend, store, recovery) never enter, so every cell of a
        comparison faces the *same* client population.
        """
        return np.random.default_rng(
            np.random.SeedSequence((self.seed, zlib.crc32(b"serve.traffic")))
        )

    def _key_probabilities(self) -> np.ndarray:
        """Zipf(s) mass over the key space (uniform when ``zipf_s == 0``)."""
        weights = 1.0 / np.power(
            np.arange(1, self.key_space + 1, dtype=np.float64), self.zipf_s
        )
        return weights / weights.sum()

    def generate(self) -> list[Request]:
        """The full request trace, in arrival order."""
        rng = self._rng()
        count = int(rng.poisson(self.rate_per_step * self.steps))
        fracs = np.sort(rng.random(count))
        keys = rng.choice(self.key_space, size=count, p=self._key_probabilities())
        reads = rng.random(count) < self.read_fraction
        deltas = rng.integers(1, 10, size=count).astype(np.float64)
        requests = []
        for rid in range(count):
            frac = float(fracs[rid])
            requests.append(
                Request(
                    rid=rid,
                    frac=frac,
                    frontend=rid % self.nprocs,
                    step=min(int(frac * self.steps), self.steps - 1),
                    op=READ if reads[rid] else WRITE,
                    key=int(keys[rid]),
                    delta=0.0 if reads[rid] else float(deltas[rid]),
                )
            )
        return requests

    def by_step_frontend(
        self, requests: list[Request] | None = None
    ) -> dict[tuple[int, int], tuple[Request, ...]]:
        """The kernel's admission table: ``(step, frontend) -> requests``."""
        table: dict[tuple[int, int], list[Request]] = {}
        for request in requests if requests is not None else self.generate():
            table.setdefault((request.step, request.frontend), []).append(request)
        return {key: tuple(reqs) for key, reqs in table.items()}


def trace_lines(requests: list[Request]):
    """Canonical JSONL lines of a trace (sorted keys, no whitespace).

    This — not the in-memory list — is what the determinism tests compare:
    byte equality of the serialization proves the traces equal down to float
    bit patterns.
    """
    for request in requests:
        yield json.dumps(request.as_dict(), sort_keys=True, separators=(",", ":"))
