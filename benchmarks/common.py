"""Shared benchmark plumbing: the report/baseline-gate contract.

Every ``bench_*.py`` script follows the same contract: assemble a JSON
report, write it with canonical formatting, and — when ``--check-baseline``
names a recorded baseline — apply a script-specific
``check_against_baseline(report, baseline, max_regression)`` that returns
human-readable failure strings.  This module holds the pieces that are
identical across scripts so each benchmark only contains what it measures:

* :func:`add_gate_arguments` — the ``--output`` / ``--check-baseline`` /
  ``--max-regression`` argument trio;
* :func:`write_report` — canonical JSON output (sorted keys, trailing
  newline) so re-recorded baselines diff cleanly;
* :func:`wall_regression` — the wall-clock ratio gate, including the guard
  that refuses a baseline file of the wrong schema instead of silently
  checking nothing;
* :func:`run_gate` — load the baseline, apply the check, print
  ``REGRESSION:`` lines to stderr, and return the process exit code.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable

#: Signature every script's baseline check follows.
BaselineCheck = Callable[[dict, dict, float], "list[str]"]


def add_gate_arguments(
    parser: argparse.ArgumentParser, *, default_output: str | None
) -> None:
    """Install the shared report/gate options on ``parser``.

    ``default_output=None`` leaves the output path to the script (e.g.
    computed from another option); it must then be filled in before
    :func:`write_report`.
    """
    parser.add_argument(
        "--output", default=default_output,
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--check-baseline", metavar="PATH", default=None,
        help="compare against a baseline JSON and exit 1 on regression",
    )
    parser.add_argument(
        "--max-regression", type=float, default=2.0,
        help="tolerated slowdown factor against the baseline (default 2.0)",
    )


def write_report(path: str, report: dict) -> None:
    """Write ``report`` as canonical JSON and announce where it landed."""
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")


def wall_regression(
    report: dict,
    baseline: dict,
    *,
    key: str,
    what: str,
    baseline_path: str,
    max_regression: float,
) -> list[str]:
    """Gate the wall-clock quantity under ``key`` against the baseline.

    A baseline without ``key`` is the wrong file (typically a CLI report
    baseline, which carries no wall times) — that is reported as a failure
    rather than silently passing an empty check.
    """
    base_wall = baseline.get(key)
    if base_wall is None:
        return [
            f"baseline has no {key!r} key — it is not a {what} benchmark "
            f"report (gate against {baseline_path}, not a CLI report baseline)"
        ]
    wall = report[key]
    if base_wall > 0 and wall / base_wall > max_regression:
        return [
            f"{what} wall {wall:.3f}s is {wall / base_wall:.2f}x slower "
            f"than baseline {base_wall:.3f}s (allowed {max_regression:.1f}x)"
        ]
    return []


def run_gate(args: argparse.Namespace, report: dict, check: BaselineCheck) -> int:
    """Apply the baseline gate selected by ``args``; return the exit code."""
    if not args.check_baseline:
        return 0
    with open(args.check_baseline) as fh:
        baseline = json.load(fh)
    failures = check(report, baseline, args.max_regression)
    if failures:
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        return 1
    print(f"baseline check passed (tolerance {args.max_regression:.1f}x)")
    return 0
