"""Trace overhead benchmark: what does instrumentation cost when it's off?

The observability bargain only holds if a job that nobody traces pays
(essentially) nothing for the seams the tracer hooks into — the interceptor
dispatch guard, the store placement-listener list, the delivery-metrics
listener check.  This benchmark runs one stencil-shaped SPMD job (8 ranks,
vector backend, no failures) three ways and reports best-of-``--repeats``
wall times:

* ``untraced_wall_s`` / ``disabled_wall_s`` — an interleaved A/A pair of
  identical tracing-disabled runs, both measured after a fully traced run
  has exercised (and warmed) the machinery: any state the trace layer leaks
  into untraced runs shows up as a gap between them, and interleaving the
  samples exposes both sides to the same machine noise;
* ``traced_wall_s`` — a full-detail tracer installed, so the per-op cost of
  tracing *enabled* is on record too (reported, not gated — enabling the
  firehose is allowed to cost).

Gates (with ``--check-baseline``):

* ``disabled_overhead_ratio = disabled_wall_s / untraced_wall_s`` must stay
  ≤ 1.05 — the machine-independent "tracing off costs ≤5%" contract;
* ``untraced_wall_s`` must not regress more than ``--max-regression``
  against the recorded baseline (machine-variance-tolerant, like every
  other wall gate in this directory).

The script also asserts, unconditionally, that two traced runs of the same
seed produce byte-identical canonical traces — the determinism contract the
whole trace layer stands on.  Results land in ``BENCH_trace.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_trace.py                # full run
    PYTHONPATH=src python benchmarks/bench_trace.py --quick        # CI smoke
    PYTHONPATH=src python benchmarks/bench_trace.py --quick \\
        --check-baseline benchmarks/BENCH_trace_baseline.json      # gate
"""

from __future__ import annotations

import argparse
import platform
import time

import numpy as np
from common import add_gate_arguments, run_gate, wall_regression, write_report

import repro
from repro.trace import Tracer, event_lines

NPROCS = 8
PROCS_PER_NODE = 2
N_LOCAL = 256
ALPHA = 0.1
INTERVAL_DIV = 6  # checkpoint every iters//6 steps, like bench_ft


def _kernel(ctx: repro.RankContext, step: int):
    """One Jacobi step: nonblocking halo exchange, gsync, interior update."""
    u = ctx.win("u")
    mine = u.local
    if ctx.rank > 0:
        u.put_nb(ctx.rank - 1, N_LOCAL + 1, mine[1:2])
    if ctx.rank < ctx.nranks - 1:
        u.put_nb(ctx.rank + 1, 0, mine[N_LOCAL : N_LOCAL + 1])
    yield ctx.gsync()
    interior = mine[1 : N_LOCAL + 1]
    mine[1 : N_LOCAL + 1] = interior + ALPHA * (
        mine[0:N_LOCAL] - 2.0 * interior + mine[2 : N_LOCAL + 2]
    )
    ctx.compute(4.0 * N_LOCAL)


def _run(iters: int, *, tracer: Tracer | None = None) -> tuple[float, Tracer | None]:
    """One job; returns (wall seconds, the tracer that rode along)."""
    policy = repro.FaultTolerancePolicy(
        interval=max(1, iters // INTERVAL_DIV), store="memory"
    )
    start = time.perf_counter()
    with repro.launch(
        NPROCS,
        topology=repro.Topology(procs_per_node=PROCS_PER_NODE),
        ft=policy,
        sync_each_step=False,
        backend="vector",
        trace=tracer,
    ) as job:
        job.allocate("u", N_LOCAL + 2)
        x = np.arange(NPROCS * N_LOCAL, dtype=np.float64)
        init = np.sin(2.0 * np.pi * x / x.size)
        for ctx in job.contexts:
            ctx.local("u")[1 : N_LOCAL + 1] = init[
                ctx.rank * N_LOCAL : (ctx.rank + 1) * N_LOCAL
            ]
        job.run(_kernel, steps=iters)
    return time.perf_counter() - start, tracer


def run_benchmarks(iters: int, repeats: int) -> dict:
    """Measure the three variants and assert trace determinism."""
    # Warm-up: exercise the trace machinery fully, twice — and pin the
    # determinism contract while we are at it: identical seeds must produce
    # identical canonical traces.  One untraced warm-up too, so the measured
    # loop below starts with allocator pools and code caches hot either way.
    _, tracer_a = _run(iters, tracer=Tracer())
    _, tracer_b = _run(iters, tracer=Tracer())
    lines_a = event_lines(tracer_a.events, canonical=True)
    lines_b = event_lines(tracer_b.events, canonical=True)
    if lines_a != lines_b:
        raise AssertionError(
            "two traced runs of the same seed produced different canonical "
            "traces — the determinism contract is broken"
        )
    _run(iters)

    # Best-of-``repeats``, sampled in rotation so the untraced reference, its
    # A/A twin and the traced variant all face the same machine conditions.
    untraced = disabled = traced = float("inf")
    for _ in range(repeats):
        untraced = min(untraced, _run(iters)[0])
        disabled = min(disabled, _run(iters)[0])
        traced = min(traced, _run(iters, tracer=Tracer())[0])

    return {
        "meta": {
            "nprocs": NPROCS,
            "procs_per_node": PROCS_PER_NODE,
            "n_local": N_LOCAL,
            "iters": iters,
            "repeats": repeats,
            "trace_events": len(tracer_a.events),
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "untraced_wall_s": round(untraced, 4),
        "disabled_wall_s": round(disabled, 4),
        "traced_wall_s": round(traced, 4),
        "disabled_overhead_ratio": round(disabled / untraced, 4),
        "traced_overhead_ratio": round(traced / untraced, 4),
    }


#: The machine-independent contract: tracing *disabled* costs at most 5%.
MAX_DISABLED_OVERHEAD = 1.05


def check_against_baseline(report: dict, baseline: dict, max_regression: float) -> list[str]:
    """Gate the disabled-overhead contract and the wall time; return failures."""
    failures = wall_regression(
        report,
        baseline,
        key="untraced_wall_s",
        what="untraced run",
        baseline_path="benchmarks/BENCH_trace_baseline.json",
        max_regression=max_regression,
    )
    ratio = report["disabled_overhead_ratio"]
    if ratio > MAX_DISABLED_OVERHEAD:
        failures.append(
            f"tracing-disabled overhead is {(ratio - 1.0) * 100:.1f}% "
            f"(disabled {report['disabled_wall_s']:.3f}s vs untraced "
            f"{report['untraced_wall_s']:.3f}s); the contract allows "
            f"{(MAX_DISABLED_OVERHEAD - 1.0) * 100:.0f}%"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--iters", type=int, default=240, help="job steps per run")
    parser.add_argument(
        "--repeats", type=int, default=5, help="take the best of this many runs"
    )
    parser.add_argument(
        "--quick", action="store_true", help="short run for CI smoke (96 steps)"
    )
    add_gate_arguments(parser, default_output="BENCH_trace.json")
    args = parser.parse_args(argv)

    iters = 96 if args.quick else args.iters
    report = run_benchmarks(iters, args.repeats)
    write_report(args.output, report)

    print(
        f"untraced {report['untraced_wall_s']:.3f}s   "
        f"disabled {report['disabled_wall_s']:.3f}s "
        f"({(report['disabled_overhead_ratio'] - 1.0) * 100:+.1f}%)   "
        f"traced {report['traced_wall_s']:.3f}s "
        f"({report['traced_overhead_ratio']:.2f}x, "
        f"{report['meta']['trace_events']} events)"
    )
    print(f"report written to {args.output}")

    return run_gate(args, report, check_against_baseline)


if __name__ == "__main__":
    raise SystemExit(main())
