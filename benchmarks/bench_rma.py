"""Hot-path RMA benchmark: eager blocking vs batched nonblocking data plane.

Measures *wall-clock* operations per second of the runtime's two execution
paths on the communication patterns of the shipped examples:

* ``heat_stencil`` — every rank streams contiguous chunks into its right
  neighbour's window each epoch (a chunked halo exchange).  The nonblocking
  path lets the vector backend coalesce the whole stream into one numpy
  slice write per epoch.
* ``ring_allreduce`` — every rank issues combining accumulates into its right
  neighbour each epoch.  Atomics cannot be coalesced (each must read its
  target), so this isolates the issue/accounting savings of the nonblocking
  path.

Both paths run the identical operation sequence; the benchmark verifies the
final window contents match bit-for-bit before reporting.  Results land in
``BENCH_rma.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_rma.py                 # full run
    PYTHONPATH=src python benchmarks/bench_rma.py --quick         # CI smoke
    PYTHONPATH=src python benchmarks/bench_rma.py --quick \\
        --check-baseline benchmarks/BENCH_rma_baseline.json       # regression gate
    PYTHONPATH=src python benchmarks/bench_rma.py --quick --backend proc \\
        --check-baseline benchmarks/BENCH_rma_proc_baseline.json  # real processes

The regression gate fails (exit 1) when any measured ops/sec regressed by
more than ``--max-regression`` (default 2x) against the checked-in baseline,
or when the batched nonblocking path no longer beats the eager blocking path
on the stencil workload.
"""

from __future__ import annotations

import argparse
import platform
import time
from dataclasses import dataclass

import numpy as np
from common import add_gate_arguments, run_gate, write_report

from repro.rma.runtime import RmaRuntime
from repro.simulator import Cluster

NPROCS = 4
WINDOW = 4096  # elements per rank


@dataclass(frozen=True)
class Workload:
    """One benchmark pattern: a stream of ops per (src, trg) epoch."""

    name: str
    #: Contiguous chunks issued per rank per epoch.
    msgs_per_epoch: int
    #: Elements per chunk.
    msg_elems: int
    #: "put" or "accumulate" — the operation every chunk performs.
    op: str


WORKLOADS = (
    Workload(name="heat_stencil", msgs_per_epoch=64, msg_elems=8, op="put"),
    Workload(name="ring_allreduce", msgs_per_epoch=32, msg_elems=16, op="accumulate"),
)


def _make_runtime(backend: str) -> RmaRuntime:
    rt = RmaRuntime(Cluster.simple(NPROCS, procs_per_node=2), backend=backend)
    rt.win_allocate("w", WINDOW)
    for rank in range(NPROCS):
        rt.local(rank, "w")[:] = np.arange(WINDOW, dtype=np.float64) * (rank + 1)
    return rt


def _run_epochs(rt: RmaRuntime, wl: Workload, epochs: int, nonblocking: bool) -> int:
    """Drive ``epochs`` epochs of the workload; return the number of comm ops."""
    ops = 0
    span = wl.msgs_per_epoch * wl.msg_elems
    assert span <= WINDOW, "workload does not fit in the window"
    for epoch in range(epochs):
        payload_base = float(epoch + 1)
        for src in range(NPROCS):
            trg = (src + 1) % NPROCS
            for m in range(wl.msgs_per_epoch):
                offset = m * wl.msg_elems
                data = np.full(wl.msg_elems, payload_base + m, dtype=np.float64)
                if wl.op == "put":
                    if nonblocking:
                        rt.put_nb(src, trg, "w", offset, data)
                    else:
                        rt.put(src, trg, "w", offset, data)
                else:
                    if nonblocking:
                        rt.accumulate_nb(src, trg, "w", offset, data)
                    else:
                        rt.accumulate(src, trg, "w", offset, data)
                ops += 1
            if nonblocking:
                rt.flush(src, trg)
    return ops


def _bench_mode(
    wl: Workload, epochs: int, *, nonblocking: bool, backend: str = "vector"
) -> tuple[float, np.ndarray]:
    """Time one mode; return (ops_per_sec, final window contents).

    The blocking reference always runs on the eager in-process backend; the
    nonblocking path runs on ``backend`` (``"vector"`` by default, ``"proc"``
    to push the stream through real worker processes over shared memory).
    """
    backend = backend if nonblocking else "sim"
    rt = _make_runtime(backend)
    try:
        # Warm up caches and allocator outside the timed region.
        _run_epochs(rt, wl, min(2, epochs), nonblocking)
    finally:
        rt.finalize()
    rt = _make_runtime(backend)
    try:
        start = time.perf_counter()
        ops = _run_epochs(rt, wl, epochs, nonblocking)
        elapsed = time.perf_counter() - start
        state = np.stack([rt.local(r, "w").copy() for r in range(NPROCS)])
    finally:
        rt.finalize()
    return ops / elapsed, state


def run_benchmarks(epochs: int, backend: str = "vector") -> dict:
    """Run every workload in both modes and assemble the result document."""
    results: dict[str, dict[str, float]] = {}
    for wl in WORKLOADS:
        blocking_ops, blocking_state = _bench_mode(wl, epochs, nonblocking=False)
        nonblocking_ops, nonblocking_state = _bench_mode(
            wl, epochs, nonblocking=True, backend=backend
        )
        if not np.array_equal(blocking_state, nonblocking_state):
            raise AssertionError(
                f"{wl.name}: blocking and nonblocking paths diverged — "
                f"the backends are not equivalent"
            )
        results[wl.name] = {
            "ops": epochs * NPROCS * wl.msgs_per_epoch,
            "blocking_ops_per_sec": round(blocking_ops, 1),
            "nonblocking_ops_per_sec": round(nonblocking_ops, 1),
            "speedup": round(nonblocking_ops / blocking_ops, 3),
        }
    return {
        "meta": {
            "nprocs": NPROCS,
            "window_elems": WINDOW,
            "epochs": epochs,
            "backend": backend,
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "workloads": results,
    }


def check_against_baseline(
    report: dict, baseline: dict, max_regression: float
) -> list[str]:
    """Compare ops/sec against the baseline; return failure messages."""
    failures: list[str] = []
    for name, base in baseline.get("workloads", {}).items():
        current = report["workloads"].get(name)
        if current is None:
            failures.append(f"{name}: workload missing from current run")
            continue
        for key in ("blocking_ops_per_sec", "nonblocking_ops_per_sec"):
            ratio = base[key] / current[key]
            if ratio > max_regression:
                failures.append(
                    f"{name}.{key}: {current[key]:.0f} ops/s is {ratio:.2f}x "
                    f"slower than baseline {base[key]:.0f} ops/s "
                    f"(allowed {max_regression:.1f}x)"
                )
    # The batched-beats-eager invariant is a claim about the in-process
    # vector backend only; real worker processes pay IPC per batch and are
    # gated purely by the ops/sec baseline above.
    stencil = report["workloads"].get("heat_stencil", {})
    if (
        report.get("meta", {}).get("backend", "vector") == "vector"
        and stencil
        and stencil["speedup"] < 1.0
    ):
        failures.append(
            f"heat_stencil: batched nonblocking path no longer beats the eager "
            f"blocking path (speedup {stencil['speedup']:.3f} < 1.0)"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--epochs", type=int, default=150, help="epochs per mode")
    parser.add_argument(
        "--quick", action="store_true", help="short run for CI smoke (30 epochs)"
    )
    parser.add_argument(
        "--backend", choices=("vector", "proc"), default="vector",
        help="backend driving the nonblocking path (default: vector)",
    )
    # Default output path is backend-dependent (BENCH_rma.json vs
    # BENCH_rma_proc.json) and filled in below.
    add_gate_arguments(parser, default_output=None)
    args = parser.parse_args(argv)

    if args.backend == "proc":
        from repro.backends import proc_available

        if not proc_available():
            print("proc backend unavailable on this platform; nothing to measure")
            return 0
    if args.output is None:
        args.output = (
            "BENCH_rma_proc.json" if args.backend == "proc" else "BENCH_rma.json"
        )

    epochs = 30 if args.quick else args.epochs
    report = run_benchmarks(epochs, backend=args.backend)
    write_report(args.output, report)

    for name, row in report["workloads"].items():
        print(
            f"{name:16s} blocking {row['blocking_ops_per_sec']:>12,.0f} ops/s   "
            f"nonblocking {row['nonblocking_ops_per_sec']:>12,.0f} ops/s   "
            f"speedup {row['speedup']:.2f}x"
        )
    print(f"report written to {args.output}")

    return run_gate(args, report, check_against_baseline)


if __name__ == "__main__":
    raise SystemExit(main())
