"""Soak-engine benchmark: wall-clock cost and virtual-time leverage.

Times the CI soak comparison (``repro.chaos.__main__.quick_spec``, three
countermeasures on the simulated backend against one identical kill plan) and
reports the *compression leverage* — how many virtual seconds of operation
each wall-clock second buys.  That leverage is the whole point of the soak
engine: an hour-equivalent campaign must stay a seconds-long CI job.

The run first asserts that a repeated comparison produces a byte-identical
report (seeded soaks are deterministic, so anything else is a bug), then
records wall times.

Usage::

    PYTHONPATH=src python benchmarks/bench_chaos.py                  # full run
    PYTHONPATH=src python benchmarks/bench_chaos.py \\
        --check-baseline benchmarks/BENCH_chaos_wall.json            # wall gate

The regression gate fails (exit 1) when the comparison wall time regressed by
more than ``--max-regression`` (default 2x) against the checked-in baseline's
``comparison_wall_s``.
"""

from __future__ import annotations

import argparse
import platform
import time

from common import add_gate_arguments, run_gate, wall_regression, write_report

from repro.chaos import run_comparison
from repro.chaos.__main__ import quick_spec
from repro.chaos.report import report_json


def run_benchmark() -> dict:
    """Time the quick comparison; assert determinism across repeats."""
    start = time.perf_counter()
    results = run_comparison(quick_spec())
    wall = time.perf_counter() - start
    if report_json(run_comparison(quick_spec())) != report_json(results):
        raise AssertionError(
            "repeated soak comparison produced a different report — "
            "seeded determinism is broken"
        )
    virtual = sum(r.metrics.total_s for r in results)
    return {
        "meta": {
            "cells": len(results),
            "compression": quick_spec().compression,
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "comparison_wall_s": round(wall, 4),
        "virtual_seconds_covered": round(virtual, 4),
        "leverage_virtual_per_wall": round(virtual / wall, 2) if wall > 0 else None,
        "report_byte_identical": True,
    }


def check_against_baseline(report: dict, baseline: dict, max_regression: float) -> list[str]:
    """Compare the comparison wall against the baseline; return failures."""
    return wall_regression(
        report, baseline,
        key="comparison_wall_s", what="soak comparison",
        baseline_path="benchmarks/BENCH_chaos_wall.json",
        max_regression=max_regression,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    add_gate_arguments(parser, default_output="BENCH_chaos_wall.json")
    args = parser.parse_args(argv)

    report = run_benchmark()
    write_report(args.output, report)
    print(
        f"comparison wall {report['comparison_wall_s']:.3f}s covering "
        f"{report['virtual_seconds_covered']:.1f} virtual seconds "
        f"({report['leverage_virtual_per_wall']:.0f}x leverage)"
    )
    print(f"report written to {args.output}")

    return run_gate(args, report, check_against_baseline)


if __name__ == "__main__":
    raise SystemExit(main())
