"""Resilience benchmark: checkpoint and recovery cost across stores × protocols.

Runs one stencil-shaped SPMD job (8 ranks, 2 per node — a multi-node layout,
so buddy and parity placement have domains to spread over) under every
checkpoint store (``memory``, ``disk``, ``parity``) crossed with the two
roll-back-capable recovery protocols (``global``, ``localized``), injecting a
mid-run fail-stop failure scaled to each configuration's own failure-free
makespan.  For each cell it reports:

* ``checkpoint_bytes`` — bytes placed into checkpoint copies over the run
  (the store's placement overhead: ~2x windows for memory, ~1x for disk,
  ~1+1/k for parity);
* ``restored_bytes`` — bytes read back out of checkpoint copies by recovery
  (the protocol's restore traffic: all ranks for a global rollback, only the
  failed ranks for localized replay);
* ``checkpoint_wall_s`` / ``recovery_wall_s`` — wall-clock cost of the
  failure-free run and the extra wall-clock the failure run paid;
* ``virtual_makespan_s`` — the simulated makespan of the failure run.

Every failure run is verified bit-identical to the failure-free field before
anything is reported.  Results land in ``BENCH_ft.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_ft.py                 # full run
    PYTHONPATH=src python benchmarks/bench_ft.py --quick         # CI smoke
    PYTHONPATH=src python benchmarks/bench_ft.py --quick \\
        --check-baseline benchmarks/BENCH_ft_baseline.json       # regression gate

The regression gate fails (exit 1) when any configuration's wall time
regressed by more than ``--max-regression`` (default 2x) against the
checked-in baseline, or when localized replay no longer restores strictly
fewer bytes than the global rollback for some store.
"""

from __future__ import annotations

import argparse
import platform
import time
from dataclasses import dataclass

import numpy as np
from common import add_gate_arguments, run_gate, write_report

import repro
from repro.simulator import FailureSchedule

NPROCS = 8
PROCS_PER_NODE = 2  # multi-node: 4 nodes
N_LOCAL = 256  # interior cells per rank (+2 ghosts)
ALPHA = 0.1

STORES = ("memory", "disk", "parity")
PROTOCOLS = ("global", "localized")


def _kernel(ctx: repro.RankContext, step: int):
    """One Jacobi step: nonblocking halo exchange, gsync, interior update."""
    u = ctx.win("u")
    mine = u.local
    if ctx.rank > 0:
        u.put_nb(ctx.rank - 1, N_LOCAL + 1, mine[1:2])
    if ctx.rank < ctx.nranks - 1:
        u.put_nb(ctx.rank + 1, 0, mine[N_LOCAL : N_LOCAL + 1])
    yield ctx.gsync()
    interior = mine[1 : N_LOCAL + 1]
    mine[1 : N_LOCAL + 1] = interior + ALPHA * (
        mine[0:N_LOCAL] - 2.0 * interior + mine[2 : N_LOCAL + 2]
    )
    ctx.compute(4.0 * N_LOCAL)


@dataclass(frozen=True)
class RunResult:
    field: np.ndarray
    wall_s: float
    elapsed: float
    checkpoint_bytes: float
    restored_bytes: float
    recoveries: float
    fallbacks: float


def _run(
    *,
    iters: int,
    store: str,
    recovery: str,
    schedule: FailureSchedule | None = None,
) -> RunResult:
    policy = repro.FaultTolerancePolicy(
        interval=max(1, iters // 6), store=store, recovery=recovery
    )
    start = time.perf_counter()
    with repro.launch(
        NPROCS,
        topology=repro.Topology(procs_per_node=PROCS_PER_NODE),
        ft=policy,
        failures=schedule,
        sync_each_step=False,
        backend="vector",
    ) as job:
        job.allocate("u", N_LOCAL + 2)
        x = np.arange(NPROCS * N_LOCAL, dtype=np.float64)
        init = np.sin(2.0 * np.pi * x / x.size)
        for ctx in job.contexts:
            ctx.local("u")[1 : N_LOCAL + 1] = init[
                ctx.rank * N_LOCAL : (ctx.rank + 1) * N_LOCAL
            ]
        report = job.run(_kernel, steps=iters)
        field = job.gather("u", part=slice(1, N_LOCAL + 1))
    wall = time.perf_counter() - start
    return RunResult(
        field=field,
        wall_s=wall,
        elapsed=report.elapsed,
        checkpoint_bytes=report.metrics.total("ft.checkpoint_bytes"),
        restored_bytes=report.metrics.total("ft.restored_bytes"),
        recoveries=report.recoveries,
        fallbacks=report.recovery_fallbacks,
    )


def run_benchmarks(iters: int) -> dict:
    """Run every store × protocol cell and assemble the result document."""
    results: dict[str, dict[str, float]] = {}
    reference: np.ndarray | None = None
    for store in STORES:
        free = _run(iters=iters, store=store, recovery="global")
        if reference is None:
            reference = free.field
        elif not np.array_equal(reference, free.field):
            raise AssertionError(f"store {store}: failure-free field diverged")
        schedule = FailureSchedule.single_rank(3, free.elapsed * 0.6)
        for protocol in PROTOCOLS:
            failed = _run(
                iters=iters, store=store, recovery=protocol, schedule=schedule
            )
            if not np.array_equal(reference, failed.field):
                raise AssertionError(
                    f"{store}/{protocol}: recovered field is not bit-identical "
                    f"to the failure-free run"
                )
            if failed.recoveries < 1:
                raise AssertionError(f"{store}/{protocol}: no recovery happened")
            results[f"{store}/{protocol}"] = {
                "checkpoint_bytes": failed.checkpoint_bytes,
                "restored_bytes": failed.restored_bytes,
                "checkpoint_wall_s": round(free.wall_s, 4),
                "recovery_wall_s": round(max(0.0, failed.wall_s - free.wall_s), 4),
                "wall_s": round(failed.wall_s, 4),
                "virtual_makespan_s": failed.elapsed,
                "recoveries": failed.recoveries,
                "fallbacks": failed.fallbacks,
            }
    return {
        "meta": {
            "nprocs": NPROCS,
            "procs_per_node": PROCS_PER_NODE,
            "n_local": N_LOCAL,
            "iters": iters,
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "configs": results,
    }


def check_against_baseline(report: dict, baseline: dict, max_regression: float) -> list[str]:
    """Compare wall times and invariants against the baseline; return failures."""
    failures: list[str] = []
    for name, base in baseline.get("configs", {}).items():
        current = report["configs"].get(name)
        if current is None:
            failures.append(f"{name}: configuration missing from current run")
            continue
        base_wall = base["wall_s"]
        if base_wall > 0 and current["wall_s"] / base_wall > max_regression:
            failures.append(
                f"{name}: wall time {current['wall_s']:.3f}s is "
                f"{current['wall_s'] / base_wall:.2f}x slower than baseline "
                f"{base_wall:.3f}s (allowed {max_regression:.1f}x)"
            )
    for store in STORES:
        glob = report["configs"].get(f"{store}/global")
        loc = report["configs"].get(f"{store}/localized")
        if not glob or not loc:
            continue
        if loc["restored_bytes"] >= glob["restored_bytes"]:
            failures.append(
                f"{store}: localized replay restored {loc['restored_bytes']:.0f} "
                f"bytes, not strictly fewer than the global rollback's "
                f"{glob['restored_bytes']:.0f}"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--iters", type=int, default=240, help="job steps per run")
    parser.add_argument(
        "--quick", action="store_true", help="short run for CI smoke (96 steps)"
    )
    add_gate_arguments(parser, default_output="BENCH_ft.json")
    args = parser.parse_args(argv)

    iters = 96 if args.quick else args.iters
    report = run_benchmarks(iters)
    write_report(args.output, report)

    for name, row in report["configs"].items():
        print(
            f"{name:20s} ckpt {row['checkpoint_bytes']:>12,.0f} B   "
            f"restored {row['restored_bytes']:>10,.0f} B   "
            f"wall {row['wall_s']:.3f}s   recoveries {row['recoveries']:.0f}"
        )
    print(f"report written to {args.output}")

    return run_gate(args, report, check_against_baseline)


if __name__ == "__main__":
    raise SystemExit(main())
