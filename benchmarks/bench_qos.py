"""QoS benchmark: the quality/robustness/speed trade-off, exactly reproduced.

Times the delivery × store sweep (``repro.qos.run_qos``: ``reliable`` vs
``best_effort`` delivery crossed with the ``memory`` and ``multilevel``
checkpoint stores, every cell facing the identical seeded kill plan), asserts
a repeated sweep produces a byte-identical report, and re-checks the engine's
trade-off invariants (reliable quality is 1.0; best-effort is strictly
faster; multilevel captures move strictly fewer bytes than full images).

Because every trial is a seeded virtual-time session, the headline quantities
are *schedule-shaped* — ``result_quality``, tolerated operations, recoveries
and incremental-capture bytes must match the recorded baseline **exactly**,
on any machine.  Only the wall clock gets a tolerance.

Usage::

    PYTHONPATH=src python benchmarks/bench_qos.py                    # full run
    PYTHONPATH=src python benchmarks/bench_qos.py \\
        --check-baseline benchmarks/BENCH_qos_baseline.json          # CI gate

The regression gate fails (exit 1) when the sweep wall time regressed by more
than ``--max-regression`` (default 2x) against the baseline, or when any
schedule-shaped quantity drifted from it at all — a seeded sweep that moved
is a behavior change, not noise.
"""

from __future__ import annotations

import argparse
import platform
import time

from common import add_gate_arguments, run_gate, wall_regression, write_report

from repro.qos import QosSpec, check_invariants, report_json, run_qos

#: Per-cell quantities that are fully determined by the seeds: any drift
#: against the baseline is gated at zero tolerance.
SCHEDULE_SHAPED = (
    "min_quality",
    "mean_quality",
    "mean_elapsed_s",
    "tolerated_ops",
    "recoveries",
    "repairs",
    "multilevel_moved_bytes",
    "multilevel_full_bytes",
)


def bench_spec() -> QosSpec:
    """The benchmark grid: simulated backend only, so the baseline's
    schedule-shaped quantities hold on every platform."""
    return QosSpec(
        backends=("sim",),
        trials=2,
        interval=3,
        workload_params={"slots": 16, "updates_per_step": 4, "steps": 12},
    )


def run_benchmark() -> dict:
    """Time the sweep; assert determinism and the trade-off invariants."""
    spec = bench_spec()
    start = time.perf_counter()
    full = run_qos(spec, executor="serial")
    wall = time.perf_counter() - start
    violations = check_invariants(full)
    if violations:
        raise AssertionError(
            "qos trade-off invariants broken:\n" + "\n".join(violations)
        )
    if report_json(run_qos(spec, executor="serial")) != report_json(full):
        raise AssertionError(
            "repeated qos sweep produced a different report — "
            "seeded determinism is broken"
        )
    cells = {
        key: {field: cell[field] for field in SCHEDULE_SHAPED}
        for key, cell in full["cells"].items()
    }
    return {
        "meta": {
            "cells": len(cells),
            "trials": spec.trials,
            "seed": spec.seed,
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "sweep_wall_s": round(wall, 4),
        "cells": cells,
        "report_byte_identical": True,
    }


def check_against_baseline(report: dict, baseline: dict, max_regression: float) -> list[str]:
    """Wall gate plus exact agreement on the schedule-shaped quantities."""
    failures = wall_regression(
        report, baseline,
        key="sweep_wall_s", what="qos sweep",
        baseline_path="benchmarks/BENCH_qos_baseline.json",
        max_regression=max_regression,
    )
    for key, base_cell in baseline.get("cells", {}).items():
        cell = report["cells"].get(key)
        if cell is None:
            failures.append(f"{key}: cell missing from the current sweep")
            continue
        for field in SCHEDULE_SHAPED:
            if cell.get(field) != base_cell.get(field):
                failures.append(
                    f"{key}: {field} = {cell.get(field)!r} differs from the "
                    f"baseline's {base_cell.get(field)!r} — seeded sweeps are "
                    f"schedule-shaped, so this is a behavior change, not noise"
                )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    add_gate_arguments(parser, default_output="BENCH_qos.json")
    args = parser.parse_args(argv)

    report = run_benchmark()
    write_report(args.output, report)
    for key, cell in sorted(report["cells"].items()):
        print(
            f"{key:28s} quality min {cell['min_quality']:.4f}   "
            f"elapsed {cell['mean_elapsed_s']:.4f}s   "
            f"tolerated {cell['tolerated_ops']:.0f}   "
            f"recoveries {cell['recoveries']:.0f}"
        )
    print(f"sweep wall {report['sweep_wall_s']:.3f}s")
    print(f"report written to {args.output}")

    return run_gate(args, report, check_against_baseline)


if __name__ == "__main__":
    raise SystemExit(main())
