"""Campaign-engine benchmark: serial vs. concurrent executor wall-clock.

Runs the tiny CI campaign grid (``repro.study.campaign.quick_spec``) once per
executor — ``serial``, ``thread`` and ``process`` — and records the
wall-clock of each along with the speedup over the serial run.  Because every
trial is an isolated deterministic virtual-time session, the three executors
must produce **byte-identical** JSON reports; the benchmark asserts that
before reporting anything, so the speedup numbers are guaranteed to describe
the same computation.

On a single-core machine the concurrent executors can only add dispatch
overhead (speedup < 1); on the multi-core CI runners the process pool is
where the fan-out pays.  Results land in ``BENCH_study.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_study.py                 # full run
    PYTHONPATH=src python benchmarks/bench_study.py --quick         # smoke
    PYTHONPATH=src python benchmarks/bench_study.py \\
        --check-baseline benchmarks/BENCH_study.json                # wall gate

The regression gate fails (exit 1) when the serial campaign wall time
regressed by more than ``--max-regression`` (default 2x) against the
checked-in baseline's ``campaign_wall_s``.  Gate only against a baseline
recorded at the same ``--trials`` count (``benchmarks/BENCH_study.json``,
the default run's own artifact — *not* the campaign report
``BENCH_study_baseline.json``, which carries no wall times).
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from dataclasses import replace

from common import add_gate_arguments, run_gate, wall_regression, write_report

from repro.study import quick_spec, report_json, run_campaign

EXECUTORS = ("serial", "thread", "process")


def run_benchmarks(trials: int, jobs: int | None) -> dict:
    """Time the quick campaign under every executor; assert identical reports."""
    spec = replace(quick_spec(), trials=trials)
    walls: dict[str, float] = {}
    reports: dict[str, str] = {}
    for executor in EXECUTORS:
        start = time.perf_counter()
        report = run_campaign(spec, executor=executor, max_workers=jobs)
        walls[executor] = time.perf_counter() - start
        reports[executor] = report_json(report)
    reference = reports["serial"]
    for executor in EXECUTORS[1:]:
        if reports[executor] != reference:
            raise AssertionError(
                f"{executor} executor produced a report that differs from the "
                f"serial run — campaign determinism is broken"
            )
    serial = walls["serial"]
    return {
        "meta": {
            "trials": trials,
            "cells": len(json.loads(reference)["cells"]),
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "campaign_wall_s": round(serial, 4),
        "executors": {
            executor: {
                "wall_s": round(wall, 4),
                "speedup_vs_serial": round(serial / wall, 3) if wall > 0 else None,
            }
            for executor, wall in walls.items()
        },
        "reports_byte_identical": True,
    }


def check_against_baseline(report: dict, baseline: dict, max_regression: float) -> list[str]:
    """Compare the serial campaign wall against the baseline; return failures."""
    return wall_regression(
        report, baseline,
        key="campaign_wall_s", what="serial campaign",
        baseline_path="benchmarks/BENCH_study.json",
        max_regression=max_regression,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trials", type=int, default=8, help="trials per campaign cell")
    parser.add_argument(
        "--quick", action="store_true", help="short run for CI smoke (4 trials)"
    )
    parser.add_argument("--jobs", type=int, default=None, help="max executor workers")
    add_gate_arguments(parser, default_output="BENCH_study.json")
    args = parser.parse_args(argv)

    trials = 4 if args.quick else args.trials
    report = run_benchmarks(trials, args.jobs)
    write_report(args.output, report)

    for executor, row in report["executors"].items():
        print(
            f"{executor:8s} wall {row['wall_s']:.3f}s   "
            f"speedup vs serial {row['speedup_vs_serial']:.2f}x"
        )
    print(f"report written to {args.output}")

    return run_gate(args, report, check_against_baseline)


if __name__ == "__main__":
    raise SystemExit(main())
