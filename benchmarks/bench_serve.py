"""Serving-layer benchmark: wall-clock cost of the SLO comparison + invariant.

Times the CI serving comparison (``repro.serve.__main__.quick_spec``, three
recovery protocols on the simulated backend against one identical kill plan
and client population), asserts a repeated comparison produces a
byte-identical report (seeded serving runs are deterministic, so anything
else is a bug), and records the headline quantities the gate rides on — the
per-protocol recovery-window p99s.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py                  # full run
    PYTHONPATH=src python benchmarks/bench_serve.py \\
        --check-baseline benchmarks/BENCH_serve_baseline.json        # CI gate

The regression gate fails (exit 1) when the comparison wall time regressed by
more than ``--max-regression`` (default 2x) against the baseline, or when the
serving invariant breaks: **localized recovery-window p99 strictly below
global rollback's** on the same kill plan.
"""

from __future__ import annotations

import argparse
import platform
import time

from common import add_gate_arguments, run_gate, wall_regression, write_report

from repro.serve import run_slo_comparison
from repro.serve.__main__ import quick_spec
from repro.serve.report import report_json
from repro.serve.slo import SEGMENT_RECOVERY


def _recovery_p99(result) -> float | None:
    latency = result.slo[SEGMENT_RECOVERY]["latency_ms"]
    return latency["p99"] if latency else None


def run_benchmark() -> dict:
    """Time the quick comparison; assert determinism across repeats."""
    start = time.perf_counter()
    results = run_slo_comparison(quick_spec())
    wall = time.perf_counter() - start
    if report_json(run_slo_comparison(quick_spec())) != report_json(results):
        raise AssertionError(
            "repeated serve comparison produced a different report — "
            "seeded determinism is broken"
        )
    cells = {}
    for result in results:
        overall = result.slo["overall"]
        cells[result.spec.cell_key] = {
            "recovery_p99_ms": _recovery_p99(result),
            "overall_p99_ms": (
                overall["latency_ms"]["p99"] if overall["latency_ms"] else None
            ),
            "errors": overall["errors"],
            "requests": overall["requests"],
        }
    return {
        "meta": {
            "cells": len(results),
            "compression": quick_spec().compression,
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "comparison_wall_s": round(wall, 4),
        "cells": cells,
        "report_byte_identical": True,
    }


def check_against_baseline(report: dict, baseline: dict, max_regression: float) -> list[str]:
    """Wall gate + the serving invariant; return human-readable failures."""
    failures = wall_regression(
        report, baseline,
        key="comparison_wall_s", what="serve comparison",
        baseline_path="benchmarks/BENCH_serve_baseline.json",
        max_regression=max_regression,
    )
    # The serving invariant reads only the current report, so it is checked
    # even when the wall gate (or its schema guard) already failed.
    cells = report["cells"]
    p99_global = cells.get("sim/memory/global", {}).get("recovery_p99_ms")
    p99_localized = cells.get("sim/memory/localized", {}).get("recovery_p99_ms")
    if p99_global is None or p99_localized is None:
        failures.append(
            f"recovery-window p99 missing (global={p99_global}, "
            f"localized={p99_localized}) — the kill plan must land mid-traffic"
        )
    elif p99_localized >= p99_global:
        failures.append(
            f"localized recovery-window p99 {p99_localized:.3f}ms is not "
            f"strictly below global rollback's {p99_global:.3f}ms on the same "
            f"kill plan"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    add_gate_arguments(parser, default_output="BENCH_serve.json")
    args = parser.parse_args(argv)

    report = run_benchmark()
    write_report(args.output, report)
    p99s = {
        key.rsplit("/", 1)[-1]: cell["recovery_p99_ms"]
        for key, cell in report["cells"].items()
    }
    print(
        f"comparison wall {report['comparison_wall_s']:.3f}s; "
        f"recovery-window p99 (ms): "
        + ", ".join(
            f"{name}={value:.3f}" if value is not None else f"{name}=—"
            for name, value in sorted(p99s.items())
        )
    )
    print(f"report written to {args.output}")

    return run_gate(args, report, check_against_baseline)


if __name__ == "__main__":
    raise SystemExit(main())
