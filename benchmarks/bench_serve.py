"""Serving-layer benchmark: wall-clock cost of the SLO comparison + invariant.

Times the CI serving comparison (``repro.serve.__main__.quick_spec``, three
recovery protocols on the simulated backend against one identical kill plan
and client population), asserts a repeated comparison produces a
byte-identical report (seeded serving runs are deterministic, so anything
else is a bug), and records the headline quantities the gate rides on — the
per-protocol recovery-window p99s.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py                  # full run
    PYTHONPATH=src python benchmarks/bench_serve.py \\
        --check-baseline benchmarks/BENCH_serve_baseline.json        # CI gate

The regression gate fails (exit 1) when the comparison wall time regressed by
more than ``--max-regression`` (default 2x) against the baseline, or when the
serving invariant breaks: **localized recovery-window p99 strictly below
global rollback's** on the same kill plan.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time

from repro.serve import run_slo_comparison
from repro.serve.__main__ import quick_spec
from repro.serve.report import report_json
from repro.serve.slo import SEGMENT_RECOVERY


def _recovery_p99(result) -> float | None:
    latency = result.slo[SEGMENT_RECOVERY]["latency_ms"]
    return latency["p99"] if latency else None


def run_benchmark() -> dict:
    """Time the quick comparison; assert determinism across repeats."""
    start = time.perf_counter()
    results = run_slo_comparison(quick_spec())
    wall = time.perf_counter() - start
    if report_json(run_slo_comparison(quick_spec())) != report_json(results):
        raise AssertionError(
            "repeated serve comparison produced a different report — "
            "seeded determinism is broken"
        )
    cells = {}
    for result in results:
        overall = result.slo["overall"]
        cells[result.spec.cell_key] = {
            "recovery_p99_ms": _recovery_p99(result),
            "overall_p99_ms": (
                overall["latency_ms"]["p99"] if overall["latency_ms"] else None
            ),
            "errors": overall["errors"],
            "requests": overall["requests"],
        }
    return {
        "meta": {
            "cells": len(results),
            "compression": quick_spec().compression,
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "comparison_wall_s": round(wall, 4),
        "cells": cells,
        "report_byte_identical": True,
    }


def check_against_baseline(report: dict, baseline: dict, max_regression: float) -> list[str]:
    """Wall gate + the serving invariant; return human-readable failures."""
    failures: list[str] = []
    base_wall = baseline.get("comparison_wall_s")
    if base_wall is None:
        return [
            "baseline has no 'comparison_wall_s' key — it is not a bench_serve "
            "report (gate against benchmarks/BENCH_serve_baseline.json, not "
            "the CLI report baseline)"
        ]
    wall = report["comparison_wall_s"]
    if wall / base_wall > max_regression:
        failures.append(
            f"serve comparison wall {wall:.3f}s is {wall / base_wall:.2f}x slower "
            f"than baseline {base_wall:.3f}s (allowed {max_regression:.1f}x)"
        )
    cells = report["cells"]
    p99_global = cells.get("sim/memory/global", {}).get("recovery_p99_ms")
    p99_localized = cells.get("sim/memory/localized", {}).get("recovery_p99_ms")
    if p99_global is None or p99_localized is None:
        failures.append(
            f"recovery-window p99 missing (global={p99_global}, "
            f"localized={p99_localized}) — the kill plan must land mid-traffic"
        )
    elif p99_localized >= p99_global:
        failures.append(
            f"localized recovery-window p99 {p99_localized:.3f}ms is not "
            f"strictly below global rollback's {p99_global:.3f}ms on the same "
            f"kill plan"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", default="BENCH_serve.json",
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--check-baseline", metavar="PATH", default=None,
        help="compare against a baseline JSON and exit 1 on regression",
    )
    parser.add_argument(
        "--max-regression", type=float, default=2.0,
        help="tolerated slowdown factor against the baseline (default 2.0)",
    )
    args = parser.parse_args(argv)

    report = run_benchmark()
    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    p99s = {
        key.rsplit("/", 1)[-1]: cell["recovery_p99_ms"]
        for key, cell in report["cells"].items()
    }
    print(
        f"comparison wall {report['comparison_wall_s']:.3f}s; "
        f"recovery-window p99 (ms): "
        + ", ".join(
            f"{name}={value:.3f}" if value is not None else f"{name}=—"
            for name, value in sorted(p99s.items())
        )
    )
    print(f"report written to {args.output}")

    if args.check_baseline:
        with open(args.check_baseline) as fh:
            baseline = json.load(fh)
        failures = check_against_baseline(report, baseline, args.max_regression)
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            return 1
        print(f"baseline check passed (tolerance {args.max_regression:.1f}x)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
